package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"april/internal/isa"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(1 << 16)
	if err := m.StoreWord(0x100, isa.MakeFixnum(42)); err != nil {
		t.Fatal(err)
	}
	w, err := m.LoadWord(0x100)
	if err != nil {
		t.Fatal(err)
	}
	if isa.FixnumValue(w) != 42 {
		t.Errorf("got %v, want fixnum 42", w)
	}
}

func TestFreshMemoryIsZeroAndFull(t *testing.T) {
	m := New(4096)
	for addr := uint32(0); addr < 4096; addr += 4 {
		if w := m.MustLoad(addr); w != 0 {
			t.Fatalf("fresh memory at %#x = %#x, want 0", addr, w)
		}
		if !m.MustFE(addr) {
			t.Fatalf("fresh memory at %#x not full", addr)
		}
	}
}

func TestAlignmentAndRangeErrors(t *testing.T) {
	m := New(4096)
	if _, err := m.LoadWord(2); !errors.Is(err, ErrUnaligned) {
		t.Errorf("LoadWord(2) err = %v, want ErrUnaligned", err)
	}
	if err := m.StoreWord(4097, 0); err == nil {
		t.Error("StoreWord past end succeeded")
	}
	if _, err := m.LoadWord(1 << 20); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("LoadWord out of range err = %v, want ErrOutOfRange", err)
	}
	if _, err := m.FE(3); !errors.Is(err, ErrUnaligned) {
		t.Errorf("FE(3) err = %v, want ErrUnaligned", err)
	}
	if err := m.SetFE(1<<20, true); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("SetFE out of range err = %v, want ErrOutOfRange", err)
	}
}

func TestFullEmptyBits(t *testing.T) {
	m := New(4096)
	addr := uint32(0x80)
	m.MustSetFE(addr, false)
	if m.MustFE(addr) {
		t.Error("bit still full after SetFE(false)")
	}
	// Neighbors unaffected.
	if !m.MustFE(addr-4) || !m.MustFE(addr+4) {
		t.Error("SetFE disturbed neighboring bits")
	}
	m.MustSetFE(addr, true)
	if !m.MustFE(addr) {
		t.Error("bit still empty after SetFE(true)")
	}
}

func TestFEBitsIndependentProperty(t *testing.T) {
	m := New(1 << 14)
	nWords := uint32(1<<14) / 4
	f := func(idxs []uint16) bool {
		// Empty a set of words; all others must stay full.
		emptied := map[uint32]bool{}
		for _, i := range idxs {
			a := (uint32(i) % nWords) * 4
			m.MustSetFE(a, false)
			emptied[a] = true
		}
		for a := uint32(0); a < nWords*4; a += 4 {
			if m.MustFE(a) == emptied[a] {
				return false
			}
		}
		for a := range emptied {
			m.MustSetFE(a, true)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAccessCombined(t *testing.T) {
	m := New(4096)
	addr := uint32(0x40)
	m.MustStore(addr, isa.MakeFixnum(7))
	m.MustSetFE(addr, false)

	prev, full, err := m.Access(addr, false, 0)
	if err != nil || full || isa.FixnumValue(prev) != 7 {
		t.Errorf("load Access = (%v, %v, %v), want (7, empty, nil)", prev, full, err)
	}

	prev, full, err = m.Access(addr, true, isa.MakeFixnum(9))
	if err != nil || full || isa.FixnumValue(prev) != 7 {
		t.Errorf("store Access = (%v, %v, %v)", prev, full, err)
	}
	if got := m.MustLoad(addr); isa.FixnumValue(got) != 9 {
		t.Errorf("after store Access, word = %v, want 9", got)
	}
	// Access does not itself change the F/E bit; flavors do that above it.
	if m.MustFE(addr) {
		t.Error("Access changed the full/empty bit")
	}
}

func TestArena(t *testing.T) {
	a := NewArena(0x1000, 0x1040)
	p1 := a.Alloc(16)
	p2 := a.Alloc(8)
	if p1 != 0x1000 || p2 != 0x1010 {
		t.Errorf("allocs at %#x, %#x", p1, p2)
	}
	if p1%8 != 0 || p2%8 != 0 {
		t.Error("allocations not 8-byte aligned")
	}
	// Unaligned request still yields aligned next pointer.
	p3 := a.Alloc(4)
	p4 := a.Alloc(8)
	if p4%8 != 0 {
		t.Errorf("p4 = %#x not aligned after odd-size alloc %#x", p4, p3)
	}
	// Exhaustion returns 0.
	if p := a.Alloc(1 << 20); p != 0 {
		t.Errorf("oversized alloc returned %#x, want 0", p)
	}
	if a.Remaining() > 0x40 {
		t.Errorf("Remaining = %d", a.Remaining())
	}
}

func TestDefaultLayout(t *testing.T) {
	l := DefaultLayout(64 << 20)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.StaticBase != isa.HeapBase {
		t.Errorf("static base %#x", l.StaticBase)
	}
	if l.HeapStart >= l.End {
		t.Error("no heap space")
	}
}

func TestDistribution(t *testing.T) {
	d := Distribution{Nodes: 4, BlockSize: 16}
	if d.Home(0) != 0 || d.Home(16) != 1 || d.Home(32) != 2 || d.Home(48) != 3 || d.Home(64) != 0 {
		t.Error("interleave wrong")
	}
	// All words of a block share a home.
	for addr := uint32(0); addr < 1024; addr += 4 {
		if d.Home(addr) != d.Home(d.BlockBase(addr)) {
			t.Fatalf("addr %#x home differs from its block base", addr)
		}
	}
	// Single node: everything is local.
	d1 := Distribution{Nodes: 1, BlockSize: 16}
	if d1.Home(12345&^3) != 0 {
		t.Error("single-node home must be 0")
	}
}

func TestInvariantMustAccessorsRaiseTypedFault(t *testing.T) {
	m := New(1024)
	cases := []struct {
		op  string
		run func()
	}{
		{"load", func() { m.MustLoad(4096) }},
		{"store", func() { m.MustStore(4096, 1) }},
		{"fe", func() { m.MustFE(4096) }},
		{"set-fe", func() { m.MustSetFE(4097, false) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				r := recover()
				f, ok := r.(*Fault)
				if !ok {
					t.Fatalf("%s: panic value %T (%v), want *Fault", tc.op, r, r)
				}
				if f.Op != tc.op {
					t.Errorf("fault op %q, want %q", f.Op, tc.op)
				}
				if f.Addr != 4096 && f.Addr != 4097 {
					t.Errorf("%s: fault addr %#x, want the faulting address", tc.op, f.Addr)
				}
				if !errors.Is(f, ErrOutOfRange) && !errors.Is(f, ErrUnaligned) {
					t.Errorf("%s: fault does not unwrap to a mem error: %v", tc.op, f.Err)
				}
			}()
			tc.run()
		}()
	}
}
