package mem

import (
	"fmt"

	"april/internal/isa"
)

// Layout carves the flat address space into the regions the run-time
// system uses. The split is convention between the compiler and the
// runtime, not hardware:
//
//	[0, HeapBase)            reserved (null page; immediate encodings)
//	[StaticBase, StaticEnd)  program constants and globals
//	[StackBase, StackEnd)    per-thread stacks, handed out by the runtime
//	[HeapStart, end)         per-processor allocation arenas
type Layout struct {
	StaticBase uint32
	StaticEnd  uint32
	StackBase  uint32
	StackEnd   uint32
	HeapStart  uint32
	End        uint32
}

// DefaultLayout sizes the regions for a memory of the given size.
// Static and stack regions get fixed shares; the heap takes the rest.
func DefaultLayout(size uint32) Layout {
	staticSize := uint32(1 << 20) // 1 MB of constants/globals
	stackSize := size / 4         // a quarter of memory for stacks
	l := Layout{
		StaticBase: isa.HeapBase,
		End:        size,
	}
	l.StaticEnd = l.StaticBase + staticSize
	l.StackBase = l.StaticEnd
	l.StackEnd = l.StackBase + stackSize
	l.HeapStart = l.StackEnd
	return l
}

// Validate checks the layout is ordered and in range.
func (l Layout) Validate() error {
	if l.StaticBase < isa.HeapBase ||
		l.StaticBase > l.StaticEnd ||
		l.StaticEnd > l.StackBase ||
		l.StackBase > l.StackEnd ||
		l.StackEnd > l.HeapStart ||
		l.HeapStart > l.End {
		return fmt.Errorf("mem: invalid layout %+v", l)
	}
	return nil
}

// Arena is a bump allocator over a region of simulated memory. The
// runtime gives each processor its own heap arena so allocation needs
// no synchronization (the paper's runtime does the same with per-node
// heaps reached through a global register).
type Arena struct {
	Next  uint32
	Limit uint32
}

// NewArena returns an arena over [base, limit).
func NewArena(base, limit uint32) *Arena { return &Arena{Next: base, Limit: limit} }

// Alloc reserves n bytes aligned to 8 (so the low three bits of object
// addresses are free for tags). It returns 0 when the arena is
// exhausted; the runtime treats that as a fatal out-of-memory error
// (this reproduction does not implement garbage collection — see
// DESIGN.md).
func (a *Arena) Alloc(n uint32) uint32 {
	addr := (a.Next + 7) &^ 7
	if addr+n > a.Limit || addr+n < addr {
		return 0
	}
	a.Next = addr + n
	return addr
}

// Remaining returns the bytes left in the arena.
func (a *Arena) Remaining() uint32 {
	addr := (a.Next + 7) &^ 7
	if addr >= a.Limit {
		return 0
	}
	return a.Limit - addr
}

// Distribution maps physical addresses to their home nodes for the
// directory protocol. ALEWIFE distributes the globally shared memory
// among the processing nodes; we interleave at block granularity so
// that consecutive blocks have different homes (this spreads directory
// traffic uniformly, the standard configuration for the kind of
// uniform-access analysis in Section 8).
type Distribution struct {
	Nodes     int
	BlockSize uint32 // bytes; a power of two
}

// Home returns the home node of addr.
func (d Distribution) Home(addr uint32) int {
	if d.Nodes <= 1 {
		return 0
	}
	return int(addr/d.BlockSize) % d.Nodes
}

// Block returns the block number containing addr.
func (d Distribution) Block(addr uint32) uint32 { return addr / d.BlockSize }

// BlockBase returns the first byte address of the block containing addr.
func (d Distribution) BlockBase(addr uint32) uint32 { return addr &^ (d.BlockSize - 1) }
