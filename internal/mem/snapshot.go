package mem

import "fmt"

// Snapshot support. The store is demand-paged, so a machine image only
// needs the resident pages: a nil data page reads as zero and a nil
// full/empty page reads as all-full, and — because page residency is
// observable to the sharded run loop's access classifier via
// PageResident — restore must reproduce the exact residency map, not
// just the exact contents. The accessors below expose residency in
// page-index order so encodings are deterministic.

// PageWords is the number of words per demand page (exported for
// snapshot encoders that size page payloads).
const PageWords = pageWords

// NumPages returns the number of page slots (resident or not).
func (m *Memory) NumPages() int { return len(m.pages) }

// Reset evicts every resident page, returning the store to its
// untouched state. Restore calls it before installing an image's pages
// so residency afterwards matches the image exactly — pages the
// original run never touched but this process did (e.g. during program
// loading) must not stay resident.
func (m *Memory) Reset() {
	for i := range m.pages {
		m.pages[i] = nil
	}
	for i := range m.fe {
		m.fe[i] = nil
	}
}

// DumpResident calls data for every resident data page and fe for
// every resident full/empty page, both in ascending page order. The
// slices are the live backing store — callers must copy, not retain.
func (m *Memory) DumpResident(data func(page uint32, words dataPage), fe func(page uint32, bits fePage)) {
	for i, p := range m.pages {
		if p != nil {
			data(uint32(i), p)
		}
	}
	for i, p := range m.fe {
		if p != nil {
			fe(uint32(i), p)
		}
	}
}

// InstallDataPage makes the given page resident with the given
// contents, taking ownership of the slice. It is the restore-side
// counterpart of DumpResident.
func (m *Memory) InstallDataPage(page uint32, words dataPage) error {
	if int(page) >= len(m.pages) {
		return fmt.Errorf("mem: data page %d out of range (%d pages)", page, len(m.pages))
	}
	if len(words) != pageWords {
		return fmt.Errorf("mem: data page %d has %d words, want %d", page, len(words), pageWords)
	}
	m.pages[page] = words
	return nil
}

// InstallFEPage makes the given full/empty page resident, taking
// ownership of the slice.
func (m *Memory) InstallFEPage(page uint32, bits []uint64) error {
	if int(page) >= len(m.fe) {
		return fmt.Errorf("mem: full/empty page %d out of range (%d pages)", page, len(m.fe))
	}
	if len(bits) != pageWords/64 {
		return fmt.Errorf("mem: full/empty page %d has %d bitmap words, want %d", page, len(bits), pageWords/64)
	}
	m.fe[page] = bits
	return nil
}
