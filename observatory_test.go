package april_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"april"
)

// stripHostPerf clears the host-side throughput fields, which
// legitimately vary run to run; everything else is simulated state and
// must be bit-identical.
func stripHostPerf(r april.Result) april.Result {
	r.Perf = april.RunPerf{}
	return r
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestObsDifferentialMatrix proves the observatory is observation-only:
// for fib and queens on perfect and ALEWIFE memory, a run with the full
// observatory armed — live server, event trace, timeline, counter
// snapshot — at 1 and 4 shards reproduces the plain sequential run's
// result bit-identically, and the sampler rows (including the
// NetInFlight and OutstandingRemote gauges) are identical sharded vs
// sequential.
func TestObsDifferentialMatrix(t *testing.T) {
	for _, benchName := range []string{"fib", "queens"} {
		src := april.BenchmarkSource(benchName, april.TestSizes)
		for _, alewife := range []bool{false, true} {
			name := benchName
			if alewife {
				name += "/alewife"
			} else {
				name += "/perfect"
			}

			plain := april.Options{Processors: 8, Output: io.Discard}
			if alewife {
				plain.Alewife = &april.AlewifeOptions{}
			}
			base, err := april.Run(src, plain)
			if err != nil {
				t.Fatalf("%s: plain run: %v", name, err)
			}

			var timelines [][]byte
			for _, shards := range []int{1, 4} {
				var chrome, timeline, counters bytes.Buffer
				o := plain
				o.Shards = shards
				o.Serve = "127.0.0.1:0"
				o.Trace = &april.TraceOptions{
					ChromeOut:    &chrome,
					TimelineOut:  &timeline,
					TimelineJSON: true,
					CountersOut:  &counters,
				}
				got, err := april.Run(src, o)
				if err != nil {
					t.Fatalf("%s x%d: observed run: %v", name, shards, err)
				}
				if stripHostPerf(got) != stripHostPerf(base) {
					t.Errorf("%s x%d: observed result differs from plain run:\n got %+v\nwant %+v",
						name, shards, stripHostPerf(got), stripHostPerf(base))
				}
				if chrome.Len() == 0 || timeline.Len() == 0 || counters.Len() == 0 {
					t.Errorf("%s x%d: empty observability output (chrome %d, timeline %d, counters %d bytes)",
						name, shards, chrome.Len(), timeline.Len(), counters.Len())
				}
				timelines = append(timelines, timeline.Bytes())
			}
			if !bytes.Equal(timelines[0], timelines[1]) {
				t.Errorf("%s: sampler rows differ sharded vs sequential", name)
			}
		}
	}
}

// TestObsLiveEndpoints exercises the live server against a real
// machine: ServeNotify fires after the server is up but before the run
// loop starts, so querying inside the callback observes the run
// deterministically mid-flight (cycle 0, not done).
func TestObsLiveEndpoints(t *testing.T) {
	src := april.BenchmarkSource("queens", april.TestSizes)
	var progressBody, metricsBody, countersBody string
	o := april.Options{
		Processors: 8,
		Alewife:    &april.AlewifeOptions{},
		Shards:     2,
		Output:     io.Discard,
		Serve:      "127.0.0.1:0",
		ServeNotify: func(url string) {
			progressBody = httpGetBody(t, url+"/progress")
			metricsBody = httpGetBody(t, url+"/metrics")
			countersBody = httpGetBody(t, url+"/counters")
		},
	}
	res, err := april.Run(src, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("run did not execute")
	}

	var p struct {
		Cycle  uint64 `json:"cycle"`
		Nodes  int    `json:"nodes"`
		Shards int    `json:"shards"`
		Done   bool   `json:"done"`
	}
	if err := json.Unmarshal([]byte(progressBody), &p); err != nil {
		t.Fatalf("progress JSON: %v\n%s", err, progressBody)
	}
	if p.Nodes != 8 || p.Shards != 2 || p.Done {
		t.Errorf("progress = %+v", p)
	}

	for _, want := range []string{
		"april_pdes_parallel_cycles",
		"april_pdes_barrier_wait_ns",
		"april_pdes_fallback_small",
		`april_pdes_local_steps{shard="1"}`,
		"april_network_cross_shard_messages",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("missing %q in /metrics:\n%s", want, metricsBody)
		}
	}

	var counters map[string]map[string]uint64
	if err := json.Unmarshal([]byte(countersBody), &counters); err != nil {
		t.Fatalf("counters JSON: %v", err)
	}
	for _, group := range []string{"pdes", "shard0.pdes", "shard1.pdes"} {
		if _, ok := counters[group]; !ok {
			t.Errorf("counters missing group %q", group)
		}
	}
}
