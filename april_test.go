package april_test

import (
	"strings"
	"testing"

	"april"
)

func TestRunQuickstart(t *testing.T) {
	var out strings.Builder
	res, err := april.Run(`(print (+ 40 2)) (* 6 7)`, april.Options{Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "42" {
		t.Errorf("value = %q", res.Value)
	}
	if out.String() != "42\n" {
		t.Errorf("output = %q", out.String())
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Error("no cycles/instructions recorded")
	}
}

func TestRunAllMachineTypes(t *testing.T) {
	src := `
(define (fib n) (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(fib 10)`
	for _, mt := range []april.MachineType{april.APRIL, april.APRILCustom, april.Encore} {
		res, err := april.Run(src, april.Options{Processors: 2, Machine: mt})
		if err != nil {
			t.Fatalf("%s: %v", mt, err)
		}
		if res.Value != "55" {
			t.Errorf("%s: fib 10 = %s", mt, res.Value)
		}
	}
	if _, err := april.Run(src, april.Options{Machine: "pdp11"}); err == nil {
		t.Error("unknown machine type accepted")
	}
}

func TestRunLazyReportsSteals(t *testing.T) {
	src := `
(define (fib n) (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(fib 13)`
	res, err := april.Run(src, april.Options{Processors: 4, LazyFutures: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals == 0 {
		t.Error("parallel lazy run recorded no steals")
	}
	if res.TasksCreated != 0 {
		t.Error("lazy run should not create eager tasks")
	}
}

func TestRunAlewife(t *testing.T) {
	res, err := april.Run(`(+ 1 2)`, april.Options{
		Processors: 4,
		Alewife:    &april.AlewifeOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "3" {
		t.Errorf("value = %q", res.Value)
	}
}

func TestInterpret(t *testing.T) {
	v, err := april.Interpret(`(cons 1 (cons 2 '()))`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != "(1 2)" {
		t.Errorf("interpret = %q", v)
	}
	if _, err := april.Interpret(`(unbound-thing)`, nil); err == nil {
		t.Error("interpreter accepted unbound call")
	}
}

func TestDisassemble(t *testing.T) {
	s, err := april.Disassemble(`(+ 1 2)`, april.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"__task_exit", "__main_exit", "trap", "jmpl"} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	cases := []string{
		`(undefined-variable)`,
		`(define (f a a) a)`,
		`(let ((x)) x)`,
		`(future)`,
		`(car 1 2)`,
	}
	for _, src := range cases {
		if _, err := april.Run(src, april.Options{}); err == nil {
			t.Errorf("program %q compiled and ran", src)
		}
	}
}

func TestModelAPI(t *testing.T) {
	p := april.DefaultModelParams()
	if p.Nodes() != 8000 {
		t.Errorf("nodes = %d", p.Nodes())
	}
	u := april.Utilization(p, 3)
	if u.Utilization < 0.74 || u.Utilization > 0.86 {
		t.Errorf("U(3) = %.3f", u.Utilization)
	}
	pts := april.Figure5(p, 4)
	if len(pts) != 5 {
		t.Errorf("figure5 points = %d", len(pts))
	}
	if s := april.FormatFigure5(pts); !strings.Contains(s, "useful") {
		t.Error("figure rendering missing header")
	}
	curves := april.SweepSwitchCost(p, []float64{4, 10}, 4)
	if len(curves[4]) != 4 {
		t.Error("sweep shape wrong")
	}
}

func TestBenchmarkSourcesCompile(t *testing.T) {
	for _, name := range []string{"fib", "factor", "queens", "speech"} {
		src := april.BenchmarkSource(name, april.TestSizes)
		if _, err := april.Run(src, april.Options{Processors: 2}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLinearFitAPI(t *testing.T) {
	a, b, r2 := april.LinearFit([]float64{1, 2, 3}, []float64{2, 4, 6})
	if a != 0 || b != 2 || r2 < 0.999 {
		t.Errorf("fit %v %v %v", a, b, r2)
	}
}

func TestRunAssembly(t *testing.T) {
	res, err := april.RunAssembly(`
.entry main
main:   movi r8, 168       ; fixnum 42
        jmpl r0, r5+0
`, april.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "42" {
		t.Errorf("value = %q", res.Value)
	}
	if _, err := april.RunAssembly(`bogus r1`, april.Options{}); err == nil {
		t.Error("invalid assembly accepted")
	}
}

func TestAssembleCompiledListing(t *testing.T) {
	// The disassembly of a compiled program must assemble back.
	listing, err := april.Disassemble(`(define (f x) (* x x)) (f 12)`, april.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := april.Assemble(listing)
	if err != nil {
		t.Fatalf("listing did not assemble: %v\n%s", err, listing)
	}
	if len(prog.Code) == 0 || prog.Symbols["f"] == 0 {
		t.Error("assembled listing lost code or symbols")
	}
}
