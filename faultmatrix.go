package april

// The fault matrix is the robustness subsystem's headline experiment:
// benchmarks × memory systems × machine sizes × fault seeds, every run
// with the invariant checkers armed. The pass criterion is the paper's
// determinism contract under perturbation — seeded timing faults may
// shift cycle counts, but every cell must compute the bit-identical
// answer, with zero invariant violations and no wedges.

import (
	"fmt"
	"io"
	"strings"

	"april/internal/harness"
)

// FaultMatrixConfig drives FaultMatrix.
type FaultMatrixConfig struct {
	// Benchmarks to sweep (default fib and queens, the two Table 3
	// kernels with the most divergent sharing patterns).
	Benchmarks []string
	// Procs are the machine sizes (default 1, 4, 8, 64).
	Procs []int
	// Seeds is how many fault plans each ALEWIFE cell runs beyond the
	// fault-free baseline (default 8; seeds are 1..Seeds). Perfect-
	// memory cells have no network to perturb, so each seed reruns the
	// cell fault-free and must reproduce the baseline bit-identically,
	// cycles included.
	Seeds int
	// Sizes selects workload scale (zero value = TestSizes).
	Sizes Table3Sizes
	// Workers fans independent cells across host cores (0 = all cores).
	Workers int
	// Verbose streams one line per completed run to Out.
	Verbose bool
	Out     io.Writer
}

// DefaultFaultMatrixConfig is the standard matrix: fib/queens ×
// perfect/alewife × {1,4,8,64}p × 8 seeds.
func DefaultFaultMatrixConfig() FaultMatrixConfig {
	return FaultMatrixConfig{
		Benchmarks: []string{"fib", "queens"},
		Procs:      []int{1, 4, 8, 64},
		Seeds:      8,
		Sizes:      TestSizes,
	}
}

// FaultMatrixCell is one completed run of the matrix.
type FaultMatrixCell struct {
	Benchmark string
	Mode      string // "perfect" or "alewife"
	Procs     int
	Seed      uint64 // 0 = fault-free baseline
	Answer    string
	Cycles    uint64
	Failure   string // empty on success
}

// FaultMatrixResult is the full matrix outcome.
type FaultMatrixResult struct {
	Cells    []FaultMatrixCell
	Failures int
}

func (cfg *FaultMatrixConfig) fill() {
	def := DefaultFaultMatrixConfig()
	if len(cfg.Benchmarks) == 0 {
		cfg.Benchmarks = def.Benchmarks
	}
	if len(cfg.Procs) == 0 {
		cfg.Procs = def.Procs
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = def.Seeds
	}
	if cfg.Sizes == (Table3Sizes{}) {
		cfg.Sizes = def.Sizes
	}
}

// FaultMatrix runs the matrix. The returned error covers harness-level
// problems only; per-cell failures (wrong answer, invariant violation,
// wedge) land in the cells' Failure fields and the Failures count.
func FaultMatrix(cfg FaultMatrixConfig) (FaultMatrixResult, error) {
	cfg.fill()
	type cellSpec struct {
		bench string
		mode  string
		procs int
		seed  uint64
	}
	var specs []cellSpec
	for _, b := range cfg.Benchmarks {
		for _, mode := range []string{"perfect", "alewife"} {
			for _, p := range cfg.Procs {
				for seed := uint64(0); seed <= uint64(cfg.Seeds); seed++ {
					specs = append(specs, cellSpec{b, mode, p, seed})
				}
			}
		}
	}

	cells, err := harness.Map(cfg.Workers, len(specs), func(i int) (FaultMatrixCell, error) {
		s := specs[i]
		cell := FaultMatrixCell{Benchmark: s.bench, Mode: s.mode, Procs: s.procs, Seed: s.seed}
		o := Options{Processors: s.procs, Check: true}
		if s.mode == "alewife" {
			o.Alewife = &AlewifeOptions{}
			if s.seed > 0 {
				fc := DefaultFaultOptions(s.seed)
				o.Faults = &fc
			}
		}
		res, err := Run(cfg.Sizes.Source(s.bench), o)
		if err != nil {
			cell.Failure = err.Error()
			return cell, nil
		}
		cell.Answer = res.Value
		cell.Cycles = res.Cycles
		return cell, nil
	})
	if err != nil {
		return FaultMatrixResult{}, err
	}

	// Judge each (benchmark, mode, procs) group against its seed-0
	// baseline: answers must match everywhere; in perfect mode (no
	// perturbation possible) cycles must match too.
	baseline := make(map[cellSpec]FaultMatrixCell)
	for i, c := range cells {
		if c.Seed == 0 {
			baseline[cellSpec{c.Benchmark, c.Mode, c.Procs, 0}] = cells[i]
		}
	}
	out := FaultMatrixResult{Cells: cells}
	for i := range out.Cells {
		c := &out.Cells[i]
		if c.Failure == "" {
			base := baseline[cellSpec{c.Benchmark, c.Mode, c.Procs, 0}]
			switch {
			case base.Failure != "":
				// Baseline itself failed; the seed runs can't be judged.
			case c.Answer != base.Answer:
				c.Failure = fmt.Sprintf("answer %q, baseline %q", c.Answer, base.Answer)
			case c.Mode == "perfect" && c.Cycles != base.Cycles:
				c.Failure = fmt.Sprintf("cycles %d, baseline %d (perfect mode must be exact)", c.Cycles, base.Cycles)
			}
		}
		if c.Failure != "" {
			out.Failures++
		}
		if cfg.Verbose && cfg.Out != nil {
			status := "ok"
			if c.Failure != "" {
				status = "FAIL: " + c.Failure
			}
			fmt.Fprintf(cfg.Out, "%-6s %-7s %3dp seed %-2d  %12d cycles  %s\n",
				c.Benchmark, c.Mode, c.Procs, c.Seed, c.Cycles, status)
		}
	}
	return out, nil
}

// FormatFaultMatrix renders the matrix grouped by cell, one line per
// (benchmark, mode, procs) with the cycle spread across seeds.
func FormatFaultMatrix(r FaultMatrixResult) string {
	type key struct {
		bench, mode string
		procs       int
	}
	groups := map[key][]FaultMatrixCell{}
	var order []key
	for _, c := range r.Cells {
		k := key{c.Benchmark, c.Mode, c.Procs}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %5s %6s %14s %14s  %s\n",
		"bench", "mode", "procs", "runs", "min-cycles", "max-cycles", "answer")
	for _, k := range order {
		cs := groups[k]
		minC, maxC := ^uint64(0), uint64(0)
		answer, status := "", "ok"
		for _, c := range cs {
			if c.Failure != "" {
				status = "FAIL"
				continue
			}
			if c.Cycles < minC {
				minC = c.Cycles
			}
			if c.Cycles > maxC {
				maxC = c.Cycles
			}
			answer = c.Answer
		}
		if minC > maxC {
			minC, maxC = 0, 0
		}
		fmt.Fprintf(&b, "%-8s %-8s %5d %6d %14d %14d  %-10s %s\n",
			k.bench, k.mode, k.procs, len(cs), minC, maxC, answer, status)
	}
	fmt.Fprintf(&b, "\n%d cells, %d failures\n", len(r.Cells), r.Failures)
	return b.String()
}
