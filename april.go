// Package april is a reproduction of "APRIL: A Processor Architecture
// for Multiprocessing" (Agarwal, Lim, Kranz, Kubiatowicz — ISCA 1990):
// an instruction-level simulator for the APRIL coarse-grain
// multithreaded processor and the ALEWIFE machine around it, a compiler
// for Mul-T mini (the paper's parallel Scheme subset with futures), the
// run-time system with eager and lazy task creation, and the Section 8
// analytical performance model.
//
// Quick start:
//
//	res, err := april.Run(`
//	    (define (fib n)
//	      (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
//	    (fib 15)`,
//	    april.Options{Processors: 4})
//	fmt.Println(res.Value, res.Cycles)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced tables and figures.
package april

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"april/internal/abi"
	"april/internal/bench"
	"april/internal/core"
	"april/internal/fault"
	"april/internal/isa"
	"april/internal/model"
	"april/internal/mult"
	"april/internal/obs"
	"april/internal/proc"
	"april/internal/rts"
	"april/internal/sim"
	"april/internal/snapshot"
	"april/internal/trace"
	"april/internal/workload"
)

// MachineType selects the simulated machine (Table 3's three systems).
type MachineType string

const (
	// APRIL is the SPARC-based APRIL: 4 task frames, 11-cycle context
	// switch, hardware future detection.
	APRIL MachineType = "april"
	// APRILCustom is the custom implementation sketched in Section 6.1
	// with a 4-cycle context switch.
	APRILCustom MachineType = "april-custom"
	// Encore is the Encore Multimax baseline: a conventional processor
	// with software future detection and heavyweight tasks.
	Encore MachineType = "encore"
)

func (mt MachineType) profile() (rts.Profile, error) {
	switch mt {
	case "", APRIL:
		return rts.APRIL, nil
	case APRILCustom:
		return rts.APRILCustom, nil
	case Encore:
		return rts.Encore, nil
	}
	return rts.Profile{}, fmt.Errorf("april: unknown machine type %q", mt)
}

// AlewifeOptions enables the full memory system (caches + directory
// coherence + k-ary n-cube network) instead of the default
// zero-latency shared memory.
type AlewifeOptions = sim.AlewifeConfig

// FaultOptions arms the seeded perturbation plan (internal/fault):
// bounded per-hop delay jitter, transient link stalls, and delayed
// directory replies. Perturbations shift timing only — under any seed
// the program computes the same answer, just in a different number of
// cycles. The fault matrix (FaultMatrix) holds the simulator to that.
type FaultOptions = fault.Config

// DefaultFaultOptions returns a moderate perturbation plan for the
// given seed: up to 3 cycles of per-hop jitter, a transient 1-32 cycle
// stall roughly every 50th transmission, and directory replies delayed
// up to 8 cycles.
func DefaultFaultOptions(seed uint64) FaultOptions { return fault.Default(seed) }

// FaultReport is the crash-forensics snapshot attached to run-ending
// errors: per-node PC/thread/outstanding-miss state, scheduler queues,
// the network census, recorded invariant violations, and trace-ring
// tails. Render it with its Render method or `cmd/april -autopsy`.
type FaultReport = fault.Report

// Autopsy extracts the crash report from a run error, if it carries
// one (deadlock, livelock, cycle-budget exhaustion, invariant
// violation, or a recovered memory fault).
func Autopsy(err error) (*FaultReport, bool) {
	var ce *sim.CrashError
	if errors.As(err, &ce) {
		return ce.Report, true
	}
	return nil, false
}

// Options configures a run.
type Options struct {
	// Processors is the machine size (default 1).
	Processors int
	// Machine selects the cost profile and future-detection style.
	Machine MachineType
	// LazyFutures compiles (future X) to lazy task creation markers
	// instead of eager tasks (Section 3.2).
	LazyFutures bool
	// Sequential strips futures: the paper's "T seq" configuration.
	Sequential bool
	// Alewife, when non-nil, simulates the full memory system.
	Alewife *AlewifeOptions
	// Output receives the program's (print ...) output.
	Output io.Writer
	// MemoryBytes sizes simulated memory; MaxCycles bounds the run.
	MemoryBytes uint32
	MaxCycles   uint64
	// Trace, when non-nil, enables the observability subsystem for the
	// run: event tracing, the utilization timeline, and the counter
	// registry. Tracing never perturbs simulated results.
	Trace *TraceOptions
	// Reference runs the simulator on its oracle paths — the per-cycle
	// reference stepping loop and the opcode-switch interpreter instead
	// of the wake-queue loop and predecoded dispatch (which also implies
	// the compiled tier off). Simulated results are bit-identical either
	// way; this exists for differential debugging of the simulator
	// itself.
	Reference bool
	// DisableCompile turns off the compiled execution tier —
	// profile-guided fusion of hot basic blocks into superinstructions
	// run in bulk across isolated windows — leaving the predecoded
	// per-op path as the differential oracle. Simulated results are
	// bit-identical either way; the tier only changes host-side speed.
	DisableCompile bool
	// CompileThreshold is how many times a block entry PC must execute
	// before the compiled tier translates it (0 = the default, 8).
	CompileThreshold int
	// DisableEpoch turns off the epoch engine — multi-node lockstep
	// execution through the compiled tier across provably safe horizons
	// — leaving per-cycle stepping as the differential oracle. Requires
	// nothing; implied off whenever the compiled tier is off. Simulated
	// results are bit-identical either way.
	DisableEpoch bool
	// Horizon caps epoch windows at that many simulated cycles (0 =
	// unbounded, bounded only by the proven horizon; 1 degenerates to
	// per-cycle stepping). Results are bit-identical at any cap.
	Horizon uint64
	// Faults, when non-nil, arms seeded timing perturbations (see
	// FaultOptions). Requires Alewife; perfect memory has no network to
	// perturb.
	Faults *FaultOptions
	// Check enables the runtime invariant checkers: coherence state
	// agreement on every protocol transition, full/empty consistency at
	// trap boundaries, scheduler thread conservation, and message-pool
	// ownership. Violations abort the run with a crash report. Checking
	// never perturbs simulated results.
	Check bool
	// DeadlockWindow overrides the watchdog's no-retirement window in
	// cycles (0 = the 3M default).
	DeadlockWindow uint64
	// Shards splits the simulated machine's nodes across that many host
	// goroutines (conservative parallel discrete-event simulation).
	// Results are bit-identical at any shard count; <= 1 keeps the
	// sequential loop. Forced to 1 under Reference or Check.
	Shards int
	// Serve, when non-empty, starts the live introspection server
	// (internal/obs) on that host:port (":0" picks a free port) for the
	// duration of the run: /progress, /counters, /metrics (Prometheus),
	// /timeline (SSE), /trace. The run advances in RunWindow slices so
	// handlers snapshot only quiescent machine state; the observatory is
	// observation-only — simulated results are bit-identical with it on
	// or off (the differential matrix in observatory_test.go proves it).
	Serve string
	// ServeNotify, when non-nil, receives the server's base URL (e.g.
	// "http://127.0.0.1:41873") once it is listening.
	ServeNotify func(url string)
	// CheckpointEvery, when nonzero, writes a restorable machine image
	// into CheckpointDir every N simulated cycles (atomic write-rename;
	// the last CheckpointKeep images are retained, default 8). A run
	// killed or crashed mid-flight resumes from the newest image with
	// Restore — bit-identically, reaching the same final state the
	// uninterrupted run would have. Checkpointing composes with Serve
	// (images are written between windows, and /checkpoint serves one
	// on demand).
	CheckpointEvery uint64
	CheckpointDir   string
	CheckpointKeep  int
	// SabotageCycle, when nonzero, deliberately corrupts scheduler
	// state at that cycle (a thread marked dead without recycling) so
	// the invariant checkers must report a violation there. It is part
	// of the run's identity and fires deterministically under every
	// tier — the test and demo hook for crash recovery and Bisect.
	SabotageCycle uint64
}

// TraceOptions selects a run's observability outputs. Any nil writer
// disables that output; enabling none makes the run equivalent to an
// untraced one.
type TraceOptions struct {
	// ChromeOut receives the event trace in Chrome trace-event JSON
	// (load in Perfetto or chrome://tracing: one process per node, one
	// thread per task frame).
	ChromeOut io.Writer
	// TimelineOut receives the per-node activity time series, CSV by
	// default or JSON rows when TimelineJSON is set.
	TimelineOut  io.Writer
	TimelineJSON bool
	// CountersOut receives the unified end-of-run counter snapshot
	// (scheduler, per-node processor/cache/directory, network) as JSON.
	CountersOut io.Writer
	// SampleInterval is the timeline window in cycles
	// (0 = trace.DefaultSampleInterval).
	SampleInterval uint64
	// Capacity is the per-node event ring size; the ring keeps the most
	// recent events (0 = trace.DefaultCapacity).
	Capacity int
}

// enable attaches the requested observers to a built machine. Already
// attached observers are kept (a restored machine arms them during
// decode so ring cursors continue from the image).
func (t *TraceOptions) enable(m *sim.Machine) {
	if t.ChromeOut != nil && m.Tracer() == nil {
		m.EnableTracing(t.Capacity)
	}
	if t.TimelineOut != nil && m.Sampler() == nil {
		m.EnableTimeline(t.SampleInterval)
	}
}

// write emits the requested outputs after a completed run.
func (t *TraceOptions) write(m *sim.Machine, endCycle uint64) error {
	if t.ChromeOut != nil {
		if err := trace.WriteChrome(t.ChromeOut, m.Tracer(), m.Cfg.Profile.Frames, endCycle); err != nil {
			return fmt.Errorf("april: chrome trace: %w", err)
		}
	}
	if t.TimelineOut != nil {
		var err error
		if t.TimelineJSON {
			err = m.Sampler().WriteJSON(t.TimelineOut)
		} else {
			err = m.Sampler().WriteCSV(t.TimelineOut)
		}
		if err != nil {
			return fmt.Errorf("april: timeline: %w", err)
		}
	}
	if t.CountersOut != nil {
		if err := m.CounterRegistry().WriteJSON(t.CountersOut); err != nil {
			return fmt.Errorf("april: counters: %w", err)
		}
	}
	return nil
}

// executeRun drives a loaded machine to completion: trace observers
// on, then either one straight Run or — when Options.Serve names an
// address — the windowed serve loop, then the trace outputs.
func executeRun(m *sim.Machine, o Options) (sim.Result, error) {
	if o.Trace != nil {
		o.Trace.enable(m)
	}
	var res sim.Result
	var err error
	switch {
	case o.Serve != "":
		res, err = runServed(m, o)
	case o.CheckpointEvery > 0:
		res, err = runCheckpointed(m, o)
	default:
		res, err = m.Run()
	}
	if err != nil {
		return sim.Result{}, err
	}
	if o.Trace != nil {
		if err := o.Trace.write(m, res.Cycles); err != nil {
			return sim.Result{}, err
		}
	}
	return res, nil
}

// defaultCheckpointKeep is how many checkpoint images a run retains
// when Options.CheckpointKeep is zero: enough spread for the bisector
// to bound a late divergence without flooding the directory.
const defaultCheckpointKeep = 8

// checkpointer writes periodic machine images with atomic
// write-rename and bounded retention.
type checkpointer struct {
	every uint64
	dir   string
	keep  int
	next  uint64   // cycle at/after which the next image is due
	files []string // retained image paths, oldest first
}

func newCheckpointer(o Options, now uint64) (*checkpointer, error) {
	dir := o.CheckpointDir
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("april: checkpoint dir: %w", err)
	}
	keep := o.CheckpointKeep
	if keep <= 0 {
		keep = defaultCheckpointKeep
	}
	return &checkpointer{every: o.CheckpointEvery, dir: dir, keep: keep, next: now + o.CheckpointEvery}, nil
}

// maybeWrite checkpoints the machine if a boundary has passed. Must be
// called only at cycle boundaries (between RunWindow slices).
func (c *checkpointer) maybeWrite(m *sim.Machine) error {
	if m.Now() < c.next {
		return nil
	}
	img, err := m.Snapshot()
	if err != nil {
		return fmt.Errorf("april: checkpoint: %w", err)
	}
	path := filepath.Join(c.dir, fmt.Sprintf("ckpt-%012d.img", m.Now()))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, img, 0o644); err != nil {
		return fmt.Errorf("april: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("april: checkpoint: %w", err)
	}
	c.files = append(c.files, path)
	for len(c.files) > c.keep {
		os.Remove(c.files[0])
		c.files = c.files[1:]
	}
	m.SetCheckpointInfo(m.Now(), "april -restore "+path)
	c.next = m.Now() + c.every
	return nil
}

// runCheckpointed drives the machine in CheckpointEvery-cycle windows,
// writing an image at each boundary. A crash mid-window still leaves
// the previous boundary's image on disk, and the crash report names
// it.
func runCheckpointed(m *sim.Machine, o Options) (sim.Result, error) {
	ck, err := newCheckpointer(o, m.Now())
	if err != nil {
		return sim.Result{}, err
	}
	for {
		done, err := m.RunWindow(ck.every)
		if err != nil {
			return sim.Result{}, err
		}
		if done {
			return m.Run()
		}
		if err := ck.maybeWrite(m); err != nil {
			return sim.Result{}, err
		}
	}
}

// serveWindow is the introspection server's slice length in cycles:
// the run advances this far between chances for HTTP handlers to
// snapshot, so a curl waits at most one window (a few milliseconds of
// host time) while the coordinator never blocks longer than one
// snapshot.
const serveWindow = 65536

// runServed runs the machine under the live introspection server. The
// sampler and tracer are armed if the caller hadn't (both are
// observation-only), every machine advance happens inside srv.Step's
// gate, and the server survives exactly as long as the run.
func runServed(m *sim.Machine, o Options) (sim.Result, error) {
	if m.Sampler() == nil {
		var interval uint64
		if o.Trace != nil {
			interval = o.Trace.SampleInterval
		}
		m.EnableTimeline(interval)
	}
	if m.Tracer() == nil {
		var capacity int
		if o.Trace != nil {
			capacity = o.Trace.Capacity
		}
		m.EnableTracing(capacity)
	}
	reg := m.CounterRegistry()
	srv := obs.NewServer(obs.Hooks{
		Progress: func() obs.Progress {
			stats := m.TotalStats()
			return obs.Progress{
				Cycle:        m.Now(),
				BudgetCycles: m.Cfg.MaxCycles,
				Instructions: stats.Instructions,
				Utilization:  stats.Utilization(),
				Nodes:        len(m.Nodes),
				Shards:       m.Partition().Shards(),
			}
		},
		Counters: reg.Snapshot,
		Timeline: func(from int) []trace.Sample {
			rows := m.Sampler().Rows()
			if from > len(rows) {
				from = len(rows)
			}
			return rows[from:]
		},
		ChromeTrace: func(w io.Writer) error {
			return trace.WriteChrome(w, m.Tracer(), m.Cfg.Profile.Frames, m.Now())
		},
		Checkpoint: m.Snapshot,
	})
	url, err := srv.Start(o.Serve)
	if err != nil {
		return sim.Result{}, err
	}
	defer srv.Close()
	if o.ServeNotify != nil {
		o.ServeNotify(url)
	}
	var ck *checkpointer
	if o.CheckpointEvery > 0 {
		if ck, err = newCheckpointer(o, m.Now()); err != nil {
			return sim.Result{}, err
		}
	}
	var done bool
	var runErr error
	for !done && runErr == nil {
		srv.Step(func() {
			if done, runErr = m.RunWindow(serveWindow); runErr == nil && !done && ck != nil {
				runErr = ck.maybeWrite(m)
			}
		})
	}
	if runErr != nil {
		return sim.Result{}, runErr
	}
	// Package the final Result (and close the last sampler window)
	// under the gate too; Run returns immediately once MainDone.
	var res sim.Result
	srv.Step(func() { res, runErr = m.Run() })
	if runErr != nil {
		return sim.Result{}, runErr
	}
	srv.Finish(res.Formatted)
	return res, nil
}

func (o Options) mode() mult.Mode {
	return mult.Mode{
		HardwareFutures: o.Machine != Encore,
		LazyFutures:     o.LazyFutures,
		Sequential:      o.Sequential,
	}
}

func (o Options) build() (*sim.Machine, *isa.Program, error) {
	prof, err := o.Machine.profile()
	if err != nil {
		return nil, nil, err
	}
	if o.Faults != nil && o.Alewife == nil {
		return nil, nil, errors.New("april: Faults requires Alewife (perfect memory has no network to perturb)")
	}
	m, err := sim.New(sim.Config{
		Nodes:              max(1, o.Processors),
		Profile:            prof,
		Lazy:               o.LazyFutures,
		MemoryBytes:        o.MemoryBytes,
		MaxCycles:          o.MaxCycles,
		Out:                o.Output,
		Alewife:            o.Alewife,
		DisableFastForward: o.Reference,
		DisablePredecode:   o.Reference,
		DisableCompile:     o.DisableCompile || o.Reference,
		CompileThreshold:   o.CompileThreshold,
		DisableEpoch:       o.DisableEpoch,
		Horizon:            o.Horizon,
		Faults:             o.Faults,
		Check:              o.Check,
		DeadlockWindow:     o.DeadlockWindow,
		Shards:             o.Shards,
		SabotageCycle:      o.SabotageCycle,
	})
	if err != nil {
		return nil, nil, err
	}
	return m, nil, nil
}

// Result reports a completed run.
type Result struct {
	// Value is the printed form of the program's final value.
	Value string
	// Cycles is the simulated execution time.
	Cycles uint64
	// Instructions retired across all processors.
	Instructions uint64
	// Utilization is useful cycles / total cycles across processors.
	Utilization float64
	// ContextSwitches across all processors.
	ContextSwitches uint64
	// TasksCreated counts eager tasks; Steals counts lazy continuation
	// steals; TouchesResolved/TouchesUnresolved count future touches.
	TasksCreated      uint64
	Steals            uint64
	TouchesResolved   uint64
	TouchesUnresolved uint64
	// CacheMissTraps counts controller-forced context switches
	// (ALEWIFE mode).
	CacheMissTraps uint64
	// Perf is the host-side throughput of this run (simulated
	// cycles/sec, MIPS, wall time). It describes the simulator, not the
	// simulated machine, and varies run to run.
	Perf RunPerf
}

// RunPerf reports host-side simulator throughput for a run or a grid.
type RunPerf = proc.Perf

// Run compiles and executes a Mul-T mini program.
func Run(source string, o Options) (Result, error) {
	start := time.Now()
	m, _, err := o.build()
	if err != nil {
		return Result{}, err
	}
	prog, err := mult.Compile(source, o.mode(), m.StaticHeap())
	if err != nil {
		return Result{}, err
	}
	if err := m.Load(prog); err != nil {
		return Result{}, err
	}
	res, err := executeRun(m, o)
	if err != nil {
		return Result{}, err
	}
	return packageResult(m, res, start), nil
}

// packageResult reduces a completed machine to the public Result.
func packageResult(m *sim.Machine, res sim.Result, start time.Time) Result {
	stats := m.TotalStats()
	var switches uint64
	for _, n := range m.Nodes {
		switches += n.Proc.Engine.Switches
	}
	s := m.Sched.Stats
	return Result{
		Value:             res.Formatted,
		Cycles:            res.Cycles,
		Instructions:      stats.Instructions,
		Utilization:       stats.Utilization(),
		ContextSwitches:   switches,
		TasksCreated:      s.TasksCreated,
		Steals:            s.Steals,
		TouchesResolved:   s.TouchesResolved,
		TouchesUnresolved: s.TouchesUnresolved,
		CacheMissTraps:    stats.Traps[core.TrapCacheMiss],
		Perf:              proc.NewPerf(res.Cycles, stats.Instructions, time.Since(start)),
	}
}

// Restore resumes a run from a checkpoint image written by a
// CheckpointEvery run (or downloaded from a server's /checkpoint). The
// image is self-contained — program, configuration, and complete
// machine state — so Options fields that describe what to run
// (Processors, Machine, Alewife, Faults, memory and cycle budgets) are
// ignored; host-side fields still apply: Output, tier selection
// (Reference, DisableCompile, DisableEpoch, CompileThreshold,
// Horizon), Shards, Check, Trace, Serve, and the Checkpoint* fields
// (resuming a checkpointed run keeps checkpointing). The resumed run
// reaches a final state bit-identical to the uninterrupted original.
func Restore(image []byte, o Options) (Result, error) {
	start := time.Now()
	ov := sim.RestoreOverrides{
		Out:              o.Output,
		Reference:        o.Reference,
		DisableCompile:   o.DisableCompile || o.Reference,
		DisableEpoch:     o.DisableEpoch,
		CompileThreshold: o.CompileThreshold,
		Horizon:          o.Horizon,
		Shards:           o.Shards,
		Check:            o.Check,
	}
	if t := o.Trace; t != nil {
		ov.Trace = t.ChromeOut != nil
		ov.Timeline = t.TimelineOut != nil
		ov.TimelineInterval = t.SampleInterval
	}
	m, err := sim.Restore(image, ov)
	if err != nil {
		return Result{}, err
	}
	res, err := executeRun(m, o)
	if err != nil {
		return Result{}, err
	}
	return packageResult(m, res, start), nil
}

// RestoreFile is Restore over an image file path.
func RestoreFile(path string, o Options) (Result, error) {
	img, err := os.ReadFile(path)
	if err != nil {
		return Result{}, fmt.Errorf("april: restore: %w", err)
	}
	return Restore(img, o)
}

// BisectOptions configures automatic divergence bisection.
type BisectOptions struct {
	// Dir is a checkpoint directory holding ckpt-*.img images of one
	// run (all must share the run identity hash).
	Dir string
	// Log, when non-nil, receives one line per probe.
	Log io.Writer
}

// BisectResult reports where a run first violates its invariants.
type BisectResult struct {
	// FirstBadCycle is the exact first cycle at which the full
	// invariant audit fails; at CleanCycle (= FirstBadCycle-1 unless a
	// checkpoint bound it tighter) it still passes.
	FirstBadCycle uint64
	CleanCycle    uint64
	// Checkpoint is the image the culprit window replays from: restore
	// it and run FirstBadCycle-CleanCycle cycles to watch the
	// violation happen.
	Checkpoint string
	// Report is the autopsy scoped to the first violating cycle.
	Report *FaultReport
}

// Bisect pins the first invariant-violating cycle of a checkpointed
// run. It binary-searches the retained checkpoints — restoring each
// candidate under the reference tier with checkers armed and running
// the full invariant audit at its cycle — to bound the violation
// between a clean and a dirty image, then binary-searches cycles
// inside that window by replaying from the clean image. Every probe is
// a fresh deterministic restore, so the answer is exact: the returned
// cycle fails the audit and the cycle before it passes.
func Bisect(o BisectOptions) (BisectResult, error) {
	logf := func(format string, args ...any) {
		if o.Log != nil {
			fmt.Fprintf(o.Log, format+"\n", args...)
		}
	}
	cks, err := loadCheckpoints(o.Dir)
	if err != nil {
		return BisectResult{}, err
	}
	logf("bisect: %d checkpoints, cycles %d..%d", len(cks), cks[0].cycle, cks[len(cks)-1].cycle)

	// Phase 1: first dirty checkpoint. probeAt audits a restored image
	// in place; the predicate is monotone because a violation is
	// persistent state corruption.
	lo, hi := -1, len(cks)
	var hiReport *FaultReport
	for lo+1 < hi {
		mid := (lo + hi) / 2
		bad, rep, err := probeAudit(cks[mid].img, cks[mid].cycle)
		if err != nil {
			return BisectResult{}, fmt.Errorf("april: bisect: probe %s: %w", cks[mid].path, err)
		}
		logf("bisect: checkpoint cycle %d: %s", cks[mid].cycle, verdict(bad))
		if bad {
			hi, hiReport = mid, rep
		} else {
			lo = mid
		}
	}
	if hi == 0 {
		return BisectResult{}, fmt.Errorf("april: bisect: earliest retained checkpoint (cycle %d) already violates; retain more images or checkpoint more often", cks[0].cycle)
	}

	var cleanCkpt ckptFile
	var dirtyCycle uint64
	if hi == len(cks) {
		// Every checkpoint is clean: the violation (if any) happens
		// after the last one. Run forward under checkers to find it.
		cleanCkpt = cks[len(cks)-1]
		bad, rep, err := probeAudit(cleanCkpt.img, ^uint64(0))
		if err != nil {
			return BisectResult{}, fmt.Errorf("april: bisect: forward run from cycle %d: %w", cleanCkpt.cycle, err)
		}
		if !bad {
			return BisectResult{}, fmt.Errorf("april: bisect: no violation — the run completes cleanly from every retained checkpoint")
		}
		dirtyCycle, hiReport = rep.Cycle, rep
		logf("bisect: forward run detects violation by cycle %d", dirtyCycle)
	} else {
		cleanCkpt = cks[hi-1]
		dirtyCycle = cks[hi].cycle
	}

	// Phase 2: exact cycle inside (clean.cycle, dirtyCycle], replaying
	// from the clean image each probe.
	cLo, cHi := cleanCkpt.cycle, dirtyCycle
	for cLo+1 < cHi {
		mid := cLo + (cHi-cLo)/2
		bad, rep, err := probeAudit(cleanCkpt.img, mid)
		if err != nil {
			return BisectResult{}, fmt.Errorf("april: bisect: replay to cycle %d: %w", mid, err)
		}
		logf("bisect: cycle %d: %s", mid, verdict(bad))
		if bad {
			cHi, hiReport = mid, rep
		} else {
			cLo = mid
		}
	}
	logf("bisect: first violating cycle %d (clean through %d)", cHi, cLo)
	return BisectResult{
		FirstBadCycle: cHi,
		CleanCycle:    cLo,
		Checkpoint:    cleanCkpt.path,
		Report:        hiReport,
	}, nil
}

func verdict(bad bool) string {
	if bad {
		return "dirty"
	}
	return "clean"
}

type ckptFile struct {
	path  string
	cycle uint64
	img   []byte
}

// loadCheckpoints reads a checkpoint directory: every ckpt-*.img,
// validated and sorted by cycle, all from the same run.
func loadCheckpoints(dir string) ([]ckptFile, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "ckpt-*.img"))
	if err != nil {
		return nil, fmt.Errorf("april: bisect: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("april: bisect: no ckpt-*.img images in %s", dir)
	}
	var cks []ckptFile
	var hash uint64
	for _, path := range paths {
		img, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("april: bisect: %w", err)
		}
		hdr, err := snapshot.PeekHeader(img)
		if err != nil {
			return nil, fmt.Errorf("april: bisect: %s: %w", path, err)
		}
		if len(cks) == 0 {
			hash = hdr.ConfigHash
		} else if hdr.ConfigHash != hash {
			return nil, fmt.Errorf("april: bisect: %s belongs to a different run (config hash %#x, expected %#x)", path, hdr.ConfigHash, hash)
		}
		cks = append(cks, ckptFile{path: path, cycle: hdr.Cycle, img: img})
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].cycle < cks[j].cycle })
	return cks, nil
}

// probeAudit restores an image under the reference tier with checkers
// armed, advances to the target cycle (the image's own cycle probes in
// place; ^uint64(0) runs to completion), and audits. A mid-run
// invariant crash counts as dirty at the crash cycle.
func probeAudit(img []byte, target uint64) (bad bool, rep *FaultReport, err error) {
	m, err := sim.Restore(img, sim.RestoreOverrides{Reference: true, Check: true})
	if err != nil {
		return false, nil, err
	}
	if target == ^uint64(0) {
		// Run to completion; Run's own end-of-run sweep audits.
		if _, err := m.Run(); err != nil {
			if r, ok := Autopsy(err); ok && r.Reason == fault.ReasonInvariant {
				return true, r, nil
			}
			return false, nil, err
		}
		return false, nil, nil
	}
	if target > m.Now() {
		window := target - m.Now()
		if _, err := m.RunWindow(window); err != nil {
			if r, ok := Autopsy(err); ok && r.Reason == fault.ReasonInvariant {
				return true, r, nil
			}
			return false, nil, err
		}
	}
	if err := m.AuditNow(); err != nil {
		if r, ok := Autopsy(err); ok {
			return true, r, nil
		}
		return false, nil, err
	}
	return false, nil, nil
}

// Interpret evaluates a program with the sequential reference
// interpreter (the compiler's differential-testing oracle).
func Interpret(source string, output io.Writer) (string, error) {
	v, err := mult.NewInterp(output, 0).RunSource(source)
	if err != nil {
		return "", err
	}
	return mult.FormatValue(v), nil
}

// RunAssembly assembles and executes a raw APRIL assembly program (the
// syntax Disassemble emits). The program's main thread starts at the
// entry point (".entry label" or the "=>" marker) with its return
// address pointing at the __main_exit stub; stubs are appended
// automatically if the source does not define them, so a program can
// simply return through r5 or end with "trap 1" (main exit, value in
// r8).
func RunAssembly(source string, o Options) (Result, error) {
	start := time.Now()
	m, _, err := o.build()
	if err != nil {
		return Result{}, err
	}
	prog, err := isa.Assemble(source)
	if err != nil {
		return Result{}, err
	}
	appendStub := func(name string, service int) {
		if _, ok := prog.Symbols[name]; ok {
			return
		}
		prog.Symbols[name] = uint32(len(prog.Code))
		prog.Code = append(prog.Code, isa.Trap(abi.TrapImm(service, 0, 0)), isa.Halt)
	}
	appendStub(abi.SymTaskExit, abi.SvcTaskExit)
	appendStub(abi.SymMainExit, abi.SvcMainExit)
	if err := m.Load(prog); err != nil {
		return Result{}, err
	}
	res, err := executeRun(m, o)
	if err != nil {
		return Result{}, err
	}
	stats := m.TotalStats()
	return Result{
		Value:        res.Formatted,
		Cycles:       res.Cycles,
		Instructions: stats.Instructions,
		Utilization:  stats.Utilization(),
		Perf:         proc.NewPerf(res.Cycles, stats.Instructions, time.Since(start)),
	}, nil
}

// Assemble parses APRIL assembly into a loadable program (exposed for
// tools; see internal/isa for the syntax).
func Assemble(source string) (*isa.Program, error) { return isa.Assemble(source) }

// Disassemble compiles a program and returns the assembly listing.
func Disassemble(source string, o Options) (string, error) {
	m, _, err := o.build()
	if err != nil {
		return "", err
	}
	prog, err := mult.Compile(source, o.mode(), m.StaticHeap())
	if err != nil {
		return "", err
	}
	return prog.Disassemble(), nil
}

// --- Analytical model (Section 8) ---

// ModelParams are the Table 4 system parameters.
type ModelParams = model.Params

// ModelPoint is the model solution at one thread count.
type ModelPoint = model.Breakdown

// Figure5Point carries the Figure 5 component curves at one p.
type Figure5Point = model.Figure5Point

// DefaultModelParams returns Table 4's defaults (8000 processors, 3-D
// network of radix 20, 10-cycle context... see model.Default).
func DefaultModelParams() ModelParams { return model.Default() }

// Utilization solves the model for p resident threads.
func Utilization(params ModelParams, threads float64) ModelPoint {
	return params.Utilization(threads)
}

// Figure5 computes the component curves of Figure 5.
func Figure5(params ModelParams, maxThreads int) []Figure5Point {
	return params.Figure5(maxThreads)
}

// FormatFigure5 renders Figure 5 curves as a table.
func FormatFigure5(points []Figure5Point) string { return model.FormatFigure5(points) }

// SweepSwitchCost computes U(p) curves for several context-switch
// costs (the Section 6.1 design ablation).
func SweepSwitchCost(params ModelParams, costs []float64, maxThreads int) map[float64][]ModelPoint {
	return model.SweepSwitchCost(params, costs, maxThreads)
}

// --- Experiment harnesses ---

// Table3Row is one row of the reproduced Table 3.
type Table3Row = bench.Row

// Table3Config drives the Table 3 harness.
type Table3Config = bench.Table3Config

// Table3Sizes selects benchmark workload sizes.
type Table3Sizes = bench.Sizes

// RunStats is one grid run's full statistics dump (Table3Config.Stats;
// the april-bench -stats-json payload).
type RunStats = bench.RunStats

// DefaultTable3Config mirrors the paper's Table 3 configuration.
func DefaultTable3Config() Table3Config { return bench.DefaultTable3Config() }

// Table3 regenerates Table 3 (execution times of fib, factor, queens
// and speech across Encore / APRIL / APRIL-lazy, normalized to
// sequential T). The grid's independent runs fan across host cores
// (Table3Config.Workers); simulated results are identical at any
// worker count.
func Table3(cfg Table3Config) ([]Table3Row, error) { return bench.Table3(cfg) }

// PerfReport is the before/after simulator-throughput comparison that
// april-bench -perf writes to BENCH_simperf.json.
type PerfReport = bench.PerfReport

// Table3Perf runs the full Table 3 grid three times — reference
// per-cycle loop on one worker, then fast-forward with the compiled
// tier off, then with basic-block superinstructions on, both on
// cfg.Workers workers — and reports the host-side speedups plus a
// bit-identity cross-check across all three grids.
func Table3Perf(cfg Table3Config, sizesName string) (PerfReport, error) {
	return bench.Table3Perf(cfg, sizesName)
}

// FormatTable3 renders rows in the paper's layout.
func FormatTable3(rows []Table3Row, procs []int) string { return bench.FormatTable(rows, procs) }

// ModelCheckConfig drives the measured-vs-model utilization grid
// (april-bench -model-check): benchmarks on the full ALEWIFE memory
// system, measured U(p)/m(p)/T(p) against the Section 8 analytical
// model.
type ModelCheckConfig = bench.ModelCheckConfig

// ModelCheckReport is the measured-vs-predicted table with per-config
// absolute and relative errors.
type ModelCheckReport = bench.ModelCheckReport

// DefaultModelCheckConfig covers fib and queens over the Figure 5
// processor range.
func DefaultModelCheckConfig() ModelCheckConfig { return bench.DefaultModelCheckConfig() }

// ModelCheck runs the measured-vs-model grid.
func ModelCheck(cfg ModelCheckConfig) (ModelCheckReport, error) { return bench.ModelCheck(cfg) }

// FormatModelCheck renders the measured-vs-predicted table.
func FormatModelCheck(r ModelCheckReport) string { return bench.FormatModelCheck(r) }

// FramesSweepConfig drives the task-frame ablation (experiment E9):
// utilization versus hardware task frames on the full memory system.
type FramesSweepConfig = bench.FramesSweepConfig

// FramesPoint is one measured frames-sweep point.
type FramesPoint = bench.FramesPoint

// DefaultFramesSweep is the standard E9 configuration.
func DefaultFramesSweep() FramesSweepConfig { return bench.DefaultFramesSweep() }

// FramesSweep measures utilization against the number of task frames.
func FramesSweep(cfg FramesSweepConfig) ([]FramesPoint, error) { return bench.FramesSweep(cfg) }

// FormatFramesSweep renders a frames sweep.
func FormatFramesSweep(points []FramesPoint) string { return bench.FormatFramesSweep(points) }

// BenchmarkSource returns the Mul-T source of a paper benchmark
// ("fib", "factor", "queens", "speech").
func BenchmarkSource(name string, sizes Table3Sizes) string { return sizes.Source(name) }

// PaperSizes and TestSizes are the standard workload scales.
var (
	PaperSizes = bench.PaperSizes
	TestSizes  = bench.TestSizes
)

// ValidationConfig drives the model-validation workload (E6).
type ValidationConfig = workload.Config

// ValidationPoint is one measured sweep point.
type ValidationPoint = workload.Measurement

// DefaultValidationConfig returns the E6 default machine.
func DefaultValidationConfig() ValidationConfig { return workload.DefaultConfig() }

// ValidateModel sweeps resident threads on the full ALEWIFE simulator,
// measuring m(p), T(p) and U(p) (experiment E6).
func ValidateModel(cfg ValidationConfig, maxThreads int) ([]ValidationPoint, error) {
	return workload.Sweep(cfg, maxThreads)
}

// LinearFit returns the least-squares a+b·x fit with its R² (used to
// check the model's linear-in-p assumptions against measurements).
func LinearFit(xs, ys []float64) (a, b, r2 float64) { return workload.LinearFit(xs, ys) }

// Version describes this reproduction.
const Version = "1.0.0"

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ = strings.TrimSpace // reserved for future formatting helpers
