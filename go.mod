module april

go 1.22
