// Benchmark harness: one benchmark per reproduced table/figure (see
// DESIGN.md's experiment index). Each benchmark runs the deterministic
// simulation and reports simulated-machine metrics (cycles, normalized
// overhead, utilization) alongside Go wall time. Workloads use the
// test-scale sizes so `go test -bench=.` completes quickly; run
// cmd/april-bench and cmd/april-model for the paper-scale numbers.
package april_test

import (
	"fmt"
	"math/rand"
	"testing"

	"april"
	"april/internal/network"
)

// reportSimThroughput adds host-side simulator speed to a simulation
// benchmark: simulated cycles (and, when known, retired instructions)
// per wall-clock second over the whole measurement loop, so
// `go test -bench` output is self-describing about how fast the
// simulator itself runs.
func reportSimThroughput(b *testing.B, perIterCycles, perIterInstructions uint64) {
	s := b.Elapsed().Seconds()
	if s <= 0 {
		return
	}
	b.ReportMetric(float64(perIterCycles)*float64(b.N)/s, "sim-cycles/sec")
	if perIterInstructions > 0 {
		b.ReportMetric(float64(perIterInstructions)*float64(b.N)/s/1e6, "sim-MIPS")
	}
}

// --- E2: Table 3 ---

func benchTable3(b *testing.B, program string, machine april.MachineType, lazy bool, procs int) {
	src := april.BenchmarkSource(program, april.TestSizes)
	seq, err := april.Run(src, april.Options{Machine: machine, Sequential: true})
	if err != nil {
		b.Fatal(err)
	}
	var cycles, instructions uint64
	for i := 0; i < b.N; i++ {
		res, err := april.Run(src, april.Options{
			Machine:     machine,
			LazyFutures: lazy,
			Processors:  procs,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
		instructions = res.Instructions
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
	b.ReportMetric(float64(cycles)/float64(seq.Cycles), "vs-T-seq")
	reportSimThroughput(b, cycles, instructions)
}

func BenchmarkTable3(b *testing.B) {
	systems := []struct {
		name    string
		machine april.MachineType
		lazy    bool
		procs   []int
	}{
		{"Encore", april.Encore, false, []int{1}},
		{"APRIL", april.APRIL, false, []int{1, 4}},
		{"AprLazy", april.APRIL, true, []int{1, 4}},
	}
	for _, prog := range []string{"fib", "factor", "queens", "speech"} {
		for _, sys := range systems {
			for _, p := range sys.procs {
				b.Run(fmt.Sprintf("%s/%s/p%d", prog, sys.name, p), func(b *testing.B) {
					benchTable3(b, prog, sys.machine, sys.lazy, p)
				})
			}
		}
	}
}

// --- E3/E4: Figure 5 and the headline utilization ---

func BenchmarkFigure5(b *testing.B) {
	params := april.DefaultModelParams()
	var u3 float64
	for i := 0; i < b.N; i++ {
		pts := april.Figure5(params, 8)
		u3 = pts[3].UsefulWork
	}
	b.ReportMetric(u3, "U(3)")
	b.ReportMetric(params.BaseLatency(), "base-latency")
}

// --- E5: context switch cost ablation (Section 6.1) ---

func BenchmarkSwitchCostSweep(b *testing.B) {
	params := april.DefaultModelParams()
	costs := []float64{1, 4, 10, 16, 64}
	var curves map[float64][]april.ModelPoint
	for i := 0; i < b.N; i++ {
		curves = april.SweepSwitchCost(params, costs, 8)
	}
	b.ReportMetric(curves[4][3].Utilization, "U(4)@C=4")
	b.ReportMetric(curves[10][3].Utilization, "U(4)@C=10")
	b.ReportMetric(curves[64][3].Utilization, "U(4)@C=64")
}

// BenchmarkContextSwitchSweep measures the same ablation by
// simulation: fib on the SPARC profile (C=11) versus the custom
// profile (C=4).
func BenchmarkContextSwitchSweep(b *testing.B) {
	src := april.BenchmarkSource("fib", april.TestSizes)
	for _, mt := range []april.MachineType{april.APRIL, april.APRILCustom} {
		b.Run(string(mt), func(b *testing.B) {
			var cycles, instructions uint64
			for i := 0; i < b.N; i++ {
				res, err := april.Run(src, april.Options{
					Machine: mt, LazyFutures: true, Processors: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
				instructions = res.Instructions
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
			reportSimThroughput(b, cycles, instructions)
		})
	}
}

// --- E6: model validation on the full memory system ---

func BenchmarkModelValidation(b *testing.B) {
	cfg := april.DefaultValidationConfig()
	cfg.Cycles = 60_000
	cfg.WarmupCycles = 20_000
	var pts []april.ValidationPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = april.ValidateModel(cfg, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	var ps, ms []float64
	for _, pt := range pts {
		ps = append(ps, float64(pt.ThreadsPerNode))
		ms = append(ms, pt.MissPerCycle)
	}
	_, slope, r2 := april.LinearFit(ps, ms)
	b.ReportMetric(slope, "m-slope")
	b.ReportMetric(r2, "m-linearity-r2")
	b.ReportMetric(pts[len(pts)-1].RemoteLatency, "T(p)")
}

// --- E7: future-detection overhead (Mul-T seq vs T seq) ---

func BenchmarkFutureDetection(b *testing.B) {
	src := april.BenchmarkSource("fib", april.TestSizes)
	for _, mt := range []april.MachineType{april.APRIL, april.Encore} {
		b.Run(string(mt), func(b *testing.B) {
			tseq, err := april.Run(src, april.Options{Machine: april.APRIL, Sequential: true})
			if err != nil {
				b.Fatal(err)
			}
			var mul uint64
			for i := 0; i < b.N; i++ {
				// Sequential code with the machine's future detection:
				// free tag traps on APRIL, compiled-in checks on the
				// Encore.
				res, err := april.Run(src, april.Options{Machine: mt, Sequential: true})
				if err != nil {
					b.Fatal(err)
				}
				mul = res.Cycles
			}
			b.ReportMetric(float64(mul)/float64(tseq.Cycles), "detection-overhead")
		})
	}
}

// --- E8: network latency versus load ---

func BenchmarkNetworkLatency(b *testing.B) {
	for _, load := range []float64{0.01, 0.08} {
		b.Run(fmt.Sprintf("load=%.2f", load), func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				tor, err := network.NewTorus(network.Geometry{Dim: 3, Radix: 3})
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(1))
				n := tor.Nodes()
				var buf []*network.Message
				var pend []int
				drain := func() {
					pend = tor.PendingNodes(pend[:0])
					for _, node := range pend {
						buf = tor.Deliveries(node, buf[:0])
						tor.Recycle(buf)
					}
				}
				for c := 0; c < 5000; c++ {
					for node := 0; node < n; node++ {
						if rng.Float64() < load {
							m := tor.Alloc()
							m.Src, m.Dst, m.Size = node, rng.Intn(n), 4
							tor.Send(m)
						}
					}
					tor.Tick()
					drain()
				}
				for j := 0; j < 100000 && tor.InFlight() > 0; j++ {
					tor.Tick()
					drain()
				}
				avg = tor.Stats().AvgLatency()
			}
			b.ReportMetric(avg, "avg-packet-latency")
		})
	}
}

// --- ALEWIFE end-to-end: fib on the full memory system ---

func BenchmarkAlewifeFib(b *testing.B) {
	src := april.BenchmarkSource("fib", april.TestSizes)
	var cycles, instructions uint64
	var misses uint64
	for i := 0; i < b.N; i++ {
		res, err := april.Run(src, april.Options{
			Processors: 4,
			Alewife:    &april.AlewifeOptions{},
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
		instructions = res.Instructions
		misses = res.CacheMissTraps
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
	b.ReportMetric(float64(misses), "remote-miss-traps")
	reportSimThroughput(b, cycles, instructions)
}

// --- E9: utilization vs hardware task frames, end to end ---

func BenchmarkFramesSweep(b *testing.B) {
	cfg := april.FramesSweepConfig{Nodes: 4, Frames: []int{1, 2, 4}, FibN: 12}
	var pts []april.FramesPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = april.FramesSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Utilization, "U(1-frame)")
	b.ReportMetric(pts[len(pts)-1].Utilization, "U(4-frames)")
	var sweepCycles uint64
	for _, pt := range pts {
		sweepCycles += pt.Cycles * uint64(cfg.Nodes)
	}
	reportSimThroughput(b, sweepCycles, 0)
}
