# Development targets. `make verify` is the full gate: build, vet, and
# the test suite under the race detector — the detector matters because
# the experiment harness fans simulator machines across goroutines.

GO ?= go

.PHONY: all build test verify bench perf

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# Measure simulator throughput (reference loop vs fast-forward +
# parallel harness) on the full Table 3 grid; writes BENCH_simperf.json.
perf:
	$(GO) run ./cmd/april-bench -sizes paper -perf
