# Development targets. `make verify` is the full gate: build, vet, and
# the test suite under the race detector — the detector matters because
# the experiment harness fans simulator machines across goroutines.

GO ?= go

.PHONY: all build test verify bench perf compile-smoke epoch-smoke

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# Measure simulator throughput (reference loop vs fast-forward +
# parallel harness, compiled tier off and on) on the full Table 3 grid;
# writes BENCH_simperf.json.
perf:
	$(GO) run ./cmd/april-bench -sizes paper -perf

# Quick gate for the compiled execution tier: the small grid with the
# compiler off and on (results must stay bit-identical), plus the
# steady-state allocation pin with the translator armed.
compile-smoke:
	$(GO) run ./cmd/april-bench -sizes test -compile=false
	$(GO) run ./cmd/april-bench -sizes test -compile -compile-threshold 1
	$(GO) test -run CompiledSteadyStateAllocRate -v ./internal/sim/

# Quick gate for the epoch engine: the sharded grid at a multi-cycle
# horizon cap and with epochs off (results must stay bit-identical),
# the full differential matrix under the race detector, and the
# steady-state allocation pin with windows armed.
epoch-smoke:
	$(GO) run ./cmd/april-bench -sizes test -shards 2 -horizon 4
	$(GO) run ./cmd/april-bench -sizes test -shards 2 -epoch=false
	$(GO) test -race -run Epoch -v ./internal/sim/
	$(GO) test -run EpochSteadyStateAllocRate -v ./internal/sim/
