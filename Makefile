# Development targets. `make verify` is the full gate: build, vet, and
# the test suite under the race detector — the detector matters because
# the experiment harness fans simulator machines across goroutines.

GO ?= go

.PHONY: all build test verify bench perf compile-smoke epoch-smoke checkpoint-smoke

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# Measure simulator throughput (reference loop vs fast-forward +
# parallel harness, compiled tier off and on) on the full Table 3 grid;
# writes BENCH_simperf.json.
perf:
	$(GO) run ./cmd/april-bench -sizes paper -perf

# Quick gate for the compiled execution tier: the small grid with the
# compiler off and on (results must stay bit-identical), plus the
# steady-state allocation pin with the translator armed.
compile-smoke:
	$(GO) run ./cmd/april-bench -sizes test -compile=false
	$(GO) run ./cmd/april-bench -sizes test -compile -compile-threshold 1
	$(GO) test -run CompiledSteadyStateAllocRate -v ./internal/sim/

# Quick gate for the epoch engine: the sharded grid at a multi-cycle
# horizon cap and with epochs off (results must stay bit-identical),
# the full differential matrix under the race detector, and the
# steady-state allocation pin with windows armed.
epoch-smoke:
	$(GO) run ./cmd/april-bench -sizes test -shards 2 -horizon 4
	$(GO) run ./cmd/april-bench -sizes test -shards 2 -epoch=false
	$(GO) test -race -run Epoch -v ./internal/sim/
	$(GO) test -run EpochSteadyStateAllocRate -v ./internal/sim/

# Quick gate for checkpoint/restore: kill a checkpointed run mid-flight,
# restore the newest image, and require bit-identical simulated stats;
# then sabotage a run at a known cycle and require the bisector to pin
# it exactly; then the snapshot differential matrix under race.
checkpoint-smoke:
	$(GO) build -o /tmp/april ./cmd/april
	/tmp/april -n 64 -alewife -stats-json examples/progs/queens.mt | tail -1 > /tmp/ckpt-clean.json
	rm -rf /tmp/ckpt-smoke
	/tmp/april -n 64 -alewife -checkpoint-every 20000 \
		-checkpoint-dir /tmp/ckpt-smoke -stats-json examples/progs/queens.mt & \
	pid=$$!; for i in $$(seq 1 300); do \
		ls /tmp/ckpt-smoke/ckpt-*.img >/dev/null 2>&1 && break; sleep 0.1; done; \
	kill -KILL $$pid 2>/dev/null || true
	/tmp/april -restore "$$(ls /tmp/ckpt-smoke/ckpt-*.img | tail -1)" -stats-json \
		| tail -1 | diff - /tmp/ckpt-clean.json
	rm -rf /tmp/ckpt-bisect
	/tmp/april -n 8 -alewife -sabotage 150000 -max-cycles 250000 -checkpoint-every 20000 \
		-checkpoint-keep 20 -checkpoint-dir /tmp/ckpt-bisect examples/progs/queens.mt || true
	/tmp/april -bisect /tmp/ckpt-bisect | grep -q '^first violating cycle: 150000$$'
	$(GO) test -race -run Snapshot -v ./internal/sim/
