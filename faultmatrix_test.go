package april_test

import (
	"strings"
	"testing"

	"april"
)

// TestFaultMatrix runs a reduced matrix (2 seeds, small machines) as a
// tier-1 gate; the full 8-seed default runs via `april-bench
// -fault-matrix` and the CI smoke job.
func TestFaultMatrix(t *testing.T) {
	cfg := april.DefaultFaultMatrixConfig()
	cfg.Procs = []int{1, 4}
	cfg.Seeds = 2
	res, err := april.FaultMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 benchmarks × 2 modes × 2 sizes × (1 baseline + 2 seeds).
	if want := 2 * 2 * 2 * 3; len(res.Cells) != want {
		t.Errorf("ran %d cells, want %d", len(res.Cells), want)
	}
	if res.Failures != 0 {
		t.Fatalf("%d failing cells:\n%s", res.Failures, april.FormatFaultMatrix(res))
	}
	table := april.FormatFaultMatrix(res)
	if !strings.Contains(table, "0 failures") {
		t.Errorf("table does not report success:\n%s", table)
	}
}

// TestAutopsyExtractsReport drives a run into its cycle budget and
// pulls the crash report back out through the public API.
func TestAutopsyExtractsReport(t *testing.T) {
	_, err := april.Run(`(define (spin n) (if (< n 1) 0 (spin (- n 1)))) (spin 100000)`,
		april.Options{MaxCycles: 2_000})
	if err == nil {
		t.Fatal("2k-cycle budget not exceeded")
	}
	r, ok := april.Autopsy(err)
	if !ok {
		t.Fatalf("no report attached to %v", err)
	}
	out := r.Render()
	if !strings.Contains(out, "april autopsy") || !strings.Contains(out, "cycle-budget") {
		t.Errorf("unexpected render:\n%s", out)
	}
}

// TestFaultsRequireAlewife: arming faults without a network is a
// configuration error, not a silent no-op.
func TestFaultsRequireAlewife(t *testing.T) {
	fc := april.DefaultFaultOptions(1)
	_, err := april.Run(`42`, april.Options{Faults: &fc})
	if err == nil || !strings.Contains(err.Error(), "Faults requires Alewife") {
		t.Errorf("got %v", err)
	}
}
