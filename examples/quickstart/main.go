// Quickstart: compile a Mul-T program with futures and run it on a
// 4-processor APRIL machine, then compare against the sequential
// compilation — the core of what the paper's architecture buys.
package main

import (
	"fmt"
	"log"
	"os"

	"april"
)

const program = `
; Doubly-recursive Fibonacci with a future around each recursive call
; (the paper's fib benchmark).
(define (fib n)
  (if (< n 2)
      n
      (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(print (fib 15))
(fib 15)
`

func main() {
	// Parallel run: 4 processors, lazy task creation.
	par, err := april.Run(program, april.Options{
		Processors:  4,
		Machine:     april.APRIL,
		LazyFutures: true,
		Output:      os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sequential baseline ("T seq"): futures stripped, one processor.
	seq, err := april.Run(program, april.Options{
		Processors: 1,
		Machine:    april.APRIL,
		Sequential: true,
		Output:     os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nresult:             %s\n", par.Value)
	fmt.Printf("sequential cycles:  %d\n", seq.Cycles)
	fmt.Printf("4-processor cycles: %d (lazy task creation)\n", par.Cycles)
	fmt.Printf("speedup:            %.2fx\n", float64(seq.Cycles)/float64(par.Cycles))
	fmt.Printf("continuations stolen: %d, context switches: %d\n",
		par.Steals, par.ContextSwitches)
}
