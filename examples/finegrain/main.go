// Fine-grain synchronization (Section 3.3): a producer/consumer
// pipeline communicating through an I-structure — a vector whose slots
// carry full/empty bits. The consumer's vector-ref-sync compiles to a
// trapping load (ldtw) that switch-spins until the producer's
// vector-set-sync! (stftw) fills the slot: word-level synchronization
// with no locks and no busy-wait loops in the program text.
package main

import (
	"fmt"
	"log"
	"os"

	"april"
)

const program = `
(define n 64)
(define stage1 (make-ivector n))  ; I-structure: all slots start empty
(define stage2 (make-ivector n))

; Stage 1: produce squares.
(define (produce i)
  (if (= i n)
      'done
      (begin
        (vector-set-sync! stage1 i (* i i))
        (produce (+ i 1)))))

; Stage 2: read stage 1 as soon as each slot fills, add 1, pass on.
(define (transform i)
  (if (= i n)
      'done
      (begin
        (vector-set-sync! stage2 i (+ 1 (vector-ref-sync stage1 i)))
        (transform (+ i 1)))))

; Stage 3: consume and sum.
(define (consume i acc)
  (if (= i n)
      acc
      (consume (+ i 1) (+ acc (vector-ref-sync stage2 i)))))

; All three stages run concurrently; the full/empty bits sequence them
; element by element.
(define f1 (future (produce 0)))
(define f2 (future (transform 0)))
(define total (consume 0 0))
(touch f1)
(touch f2)
(print total)
total
`

func main() {
	res, err := april.Run(program, april.Options{
		Processors: 3,
		Machine:    april.APRIL,
		Output:     os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	// sum_{i<64} (i^2 + 1) = 85344 + 64
	fmt.Printf("\npipeline sum = %s (expected 85408)\n", res.Value)
	fmt.Printf("cycles: %d, context switches: %d\n", res.Cycles, res.ContextSwitches)
	fmt.Println("\nEvery element-level handoff synchronized by a full/empty bit —")
	fmt.Println("no barriers, no locks (Section 3.3 of the paper).")
}
