; Producer/consumer through full/empty bits (Section 3.3).
(define cells (make-ivector 16))
(define (produce i)
  (if (= i 16) 'done
      (begin (vector-set-sync! cells i (* i 3)) (produce (+ i 1)))))
(define producer (future (produce 0)))
(define (consume i acc)
  (if (= i 16) acc (consume (+ i 1) (+ acc (vector-ref-sync cells i)))))
(define total (consume 0 0))
(touch producer)
(print total)
total
