; The paper's fib benchmark: futures around both recursive calls.
(define (fib n)
  (if (< n 2)
      n
      (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(print (fib 18))
(fib 18)
