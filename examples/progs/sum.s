; Raw APRIL assembly: sum the fixnums 1..100 and return the result
; through the main-exit convention (value in r8).
; Run with: april -asm examples/progs/sum.s
.entry main
main:   movi r9, 400         ; i = fixnum 100  (100 << 2)
        movi r10, 0          ; sum = fixnum 0
loop:   add r10, r10, r9
        subcc r9, r9, 4      ; i--
        bg loop
        add r8, r10, r0      ; result convention: r8
        jmpl r0, r5+0        ; return to __main_exit
