// Eager versus lazy task creation (Section 3.2) on an irregular
// divide-and-conquer workload: counting the nodes of an unbalanced
// tree. Eager futures pay the full task-creation cost at every future
// expression; lazy task creation only materializes a task when an idle
// processor actually steals one, so the overhead collapses when the
// machine is busy.
package main

import (
	"fmt"
	"log"

	"april"
)

const program = `
; An unbalanced recursion: the left subtree is twice the size of the
; right, so static partitioning would not balance it — the scheduler
; has to.
(define (count n)
  (if (< n 2)
      1
      (+ 1 (+ (future (count (- n 1)))
              (count (quotient n 2))))))
(count 17)
`

func main() {
	type row struct {
		label string
		opts  april.Options
	}
	rows := []row{
		{"sequential (T seq)", april.Options{Processors: 1, Sequential: true}},
		{"eager, 1 processor", april.Options{Processors: 1}},
		{"eager, 8 processors", april.Options{Processors: 8}},
		{"lazy,  1 processor", april.Options{Processors: 1, LazyFutures: true}},
		{"lazy,  8 processors", april.Options{Processors: 8, LazyFutures: true}},
	}

	var base uint64
	fmt.Printf("%-22s %12s %10s %8s %8s\n", "configuration", "cycles", "vs T-seq", "tasks", "steals")
	for i, r := range rows {
		res, err := april.Run(program, r.opts)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res.Cycles
		}
		fmt.Printf("%-22s %12d %9.2fx %8d %8d\n",
			r.label, res.Cycles, float64(res.Cycles)/float64(base),
			res.TasksCreated, res.Steals)
	}
	fmt.Println("\nLazy task creation turns almost every future into a plain call")
	fmt.Println("(markers stolen only when processors idle), reproducing the paper's")
	fmt.Println("~1.5x lazy overhead versus ~14x for normal task creation on fib.")
}
