// Multimodel support mechanisms (Section 3.4): the out-of-band LDIO /
// STIO instructions drive the per-node DMA engine for block transfers
// — the primitive the paper proposes for a message-passing
// computational model on top of APRIL. The program below is raw APRIL
// assembly: it builds an array, block-transfers it to a remote buffer,
// polls the transfer status register, and sums the copy.
package main

import (
	"fmt"
	"log"

	"april"
)

const program = `
; Registers: r9 src base, r10 dst base, r11 loop index (raw bytes),
;            r12 scratch, r8 result.
.entry main
main:
        movi r9, 0x300000         ; source buffer
        movi r10, 0x340000        ; destination "message" buffer
        movi r11, 0               ; byte offset

fill:   subcc r0, r11, 64         ; 16 words
        bge transfer
        srl r12, r11, 2           ; i = off/4
        sll r12, r12, 2           ; value = fixnum(i) = i<<2
        sll r12, r12, 1           ;         ... times 2 -> fixnum(2i)
        stnt [r9+r11], r12
        rawadd r11, r11, 4
        ba fill

transfer:
        stio [r0+32], r9          ; IOBTSrc
        stio [r0+36], r10         ; IOBTDst
        movi r12, 64
        stio [r0+40], r12         ; IOBTLen
        stio [r0+44], r0          ; IOBTGo

poll:   ldio r12, [r0+48]         ; IOBTStatus: fixnum 1 while busy
        subcc r0, r12, 4          ; fixnum(1)
        be poll                   ; spin until the DMA engine is idle

        ; Sum the received message: r8 = sum of fixnums at dst.
        movi r8, 0
        movi r11, 0
sum:    subcc r0, r11, 64
        bge done
        ldnt r12, [r10+r11]
        add r8, r8, r12
        rawadd r11, r11, 4
        ba sum

done:   jmpl r0, r5+0             ; return r8 through main-exit
`

func main() {
	res, err := april.RunAssembly(program, april.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// sum of 2i for i in 0..15 = 240
	fmt.Printf("message sum = %s (expected 240)\n", res.Value)
	fmt.Printf("cycles: %d (DMA runs concurrently; the poll loop observes\n", res.Cycles)
	fmt.Println("the engine's modeled 2-cycles-per-word duration)")
	fmt.Println()
	fmt.Println("Block transfers plus interprocessor interrupts (IOIPITarget /")
	fmt.Println("IOIPISend) form the paper's primitive for message passing on a")
	fmt.Println("shared-memory machine.")
}
