// Scalability analysis (Section 8): use the analytical model to ask
// the paper's design questions for an 8000-processor machine — how
// many resident threads does a processor need, and how much does the
// context-switch cost matter?
package main

import (
	"fmt"

	"april"
)

func main() {
	params := april.DefaultModelParams() // Table 4

	fmt.Printf("Machine: %d processors, %d-ary %d-cube, %.0f-cycle base round trip\n\n",
		params.Nodes(), params.Radix, params.Dim, params.BaseLatency())

	// Figure 5: utilization components vs resident threads.
	fmt.Println("Figure 5 — processor utilization vs resident threads (C = 10):")
	fmt.Println()
	fmt.Print(april.FormatFigure5(april.Figure5(params, 8)))

	// The headline claim.
	u3 := april.Utilization(params, 3)
	fmt.Printf("\nWith three resident threads: %.0f%% utilization (m = %.3f/cycle, T = %.0f cycles).\n",
		100*u3.Utilization, u3.MissRate, u3.Latency)

	// Section 6.1's design question: is an 11-cycle context switch
	// acceptable, or is custom 4-cycle hardware needed?
	fmt.Println("\nContext-switch cost ablation at p = 4:")
	curves := april.SweepSwitchCost(params, []float64{1, 4, 10, 16, 64}, 4)
	for _, c := range []float64{1, 4, 10, 16, 64} {
		fmt.Printf("  C = %2.0f cycles -> U = %.3f\n", c, curves[c][3].Utilization)
	}
	fmt.Println("\nThe drop from C=4 to C=10 is modest because switches happen only on")
	fmt.Println("cache misses (~every 50-100 cycles) — the observation that lets APRIL")
	fmt.Println("use cheap software-assisted switching instead of custom hardware.")

	// Cache sizing: Table 4's working sets against smaller caches.
	fmt.Println("\nCache size vs utilization at p = 4 (250-block working sets):")
	for _, kb := range []int{16, 32, 64, 128} {
		p := params
		p.CacheBytes = kb << 10
		fmt.Printf("  %3d KB -> U = %.3f\n", kb, p.Utilization(4).Utilization)
	}
	fmt.Println("\n\"Caches greater than 64 Kbytes comfortably sustain the working sets")
	fmt.Println("of four processes\" (Section 8).")
}
